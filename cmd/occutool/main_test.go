package main

import (
	"strings"
	"testing"
)

func TestOccutoolBasic(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "1024", "-c", "256"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"E[mu]", "Var[mu]", "domain: RHD", "Poisson"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestOccutoolPMF(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "64", "-c", "64", "-pmf"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "P(mu=k) exact") {
		t.Errorf("pmf table missing:\n%s", out.String())
	}
	// CD family: normal limit law.
	if !strings.Contains(out.String(), "Normal") {
		t.Errorf("expected normal law for n=C:\n%s", out.String())
	}
}

func TestOccutoolLHD(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "16", "-c", "256"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "domain: LHD") ||
		!strings.Contains(out.String(), "mu - 240 ~ Poisson") {
		t.Errorf("LHD shifted-Poisson law missing:\n%s", out.String())
	}
}

func TestOccutoolErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"missing flags": {},
		"bad n":         {"-n", "-5", "-c", "10"},
		"bad c":         {"-n", "5", "-c", "0"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenInfoConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "trace.bin")
	txt := filepath.Join(dir, "trace.txt")
	bin2 := filepath.Join(dir, "trace2.bin")

	var out strings.Builder
	err := run([]string{"gen", "-model", "waypoint", "-l", "500", "-n", "12",
		"-steps", "40", "-seed", "9", "-o", bin}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "12 nodes x 40 snapshots") {
		t.Errorf("gen output: %s", out.String())
	}

	out.Reset()
	if err := run([]string{"info", "-r", "120", bin}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"12 nodes, 40 snapshots", "critical radius", "connected at r=120"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("info output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"convert", "-to", "text", bin, txt}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# adhocnet-trace v1") {
		t.Errorf("text conversion wrong: %.80s", data)
	}

	// Text back to binary, then info again: same shape.
	out.Reset()
	if err := run([]string{"convert", "-to", "binary", txt, bin2}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"info", bin2}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "12 nodes, 40 snapshots") {
		t.Errorf("round-tripped info: %s", out.String())
	}
}

func TestGenAllModels(t *testing.T) {
	dir := t.TempDir()
	for _, model := range []string{"stationary", "waypoint", "drunkard", "direction", "gaussmarkov", "rpgm"} {
		var out strings.Builder
		path := filepath.Join(dir, model+".bin")
		err := run([]string{"gen", "-model", model, "-l", "200", "-n", "6",
			"-steps", "10", "-o", path}, &out)
		if err != nil {
			t.Errorf("model %s: %v", model, err)
		}
	}
}

func TestGenAllPlacements(t *testing.T) {
	dir := t.TempDir()
	for _, placement := range []string{"uniform", "hotspots", "clusters", "edge"} {
		var out strings.Builder
		path := filepath.Join(dir, placement+".bin")
		err := run([]string{"gen", "-model", "stationary", "-placement", placement,
			"-l", "200", "-n", "6", "-steps", "3", "-o", path}, &out)
		if err != nil {
			t.Errorf("placement %s: %v", placement, err)
		}
	}
}

func TestGenTextFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.txt")
	var out strings.Builder
	err := run([]string{"gen", "-model", "stationary", "-l", "100", "-n", "4",
		"-steps", "5", "-text", "-o", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "# adhocnet-trace v1") {
		t.Errorf("text flag produced non-text output: %.60s", data)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]string{
		"no subcommand":    {},
		"unknown command":  {"frobnicate"},
		"gen missing -o":   {"gen", "-model", "waypoint"},
		"gen bad model":    {"gen", "-model", "x", "-o", filepath.Join(dir, "t")},
		"gen bad place":    {"gen", "-placement", "x", "-o", filepath.Join(dir, "t")},
		"info missing arg": {"info"},
		"info no file":     {"info", filepath.Join(dir, "nope.bin")},
		"convert bad args": {"convert", "-to", "text", "only-one"},
		"convert bad fmt":  {"convert", "-to", "xml", "a", "b"},
	}
	for name, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// Command mobgen generates, inspects and converts mobility traces.
//
//	mobgen gen -model waypoint -l 1000 -n 32 -steps 500 -o trace.bin
//	mobgen info trace.bin
//	mobgen convert -to text trace.bin trace.txt
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"adhocnet/internal/geom"
	"adhocnet/internal/graph"
	"adhocnet/internal/mobility"
	"adhocnet/internal/scenario"
	"adhocnet/internal/stats"
	"adhocnet/internal/trace"
	"adhocnet/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mobgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mobgen <gen|info|convert> [flags]")
	}
	switch args[0] {
	case "gen":
		return genCmd(args[1:], out)
	case "info":
		return infoCmd(args[1:], out)
	case "convert":
		return convertCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, info or convert)", args[0])
	}
}

func genCmd(args []string, out io.Writer) error {
	registry := scenario.Default()
	fs := flag.NewFlagSet("mobgen gen", flag.ContinueOnError)
	var (
		model = fs.String("model", "waypoint",
			"mobility model: "+strings.Join(registry.MobilityKinds(), ", "))
		placement = fs.String("placement", "uniform",
			"initial placement (registry defaults): "+strings.Join(registry.PlacementKinds(), ", "))
		l           = fs.Float64("l", 1000, "region side")
		dim         = fs.Int("d", 2, "region dimension")
		n           = fs.Int("n", 32, "number of nodes")
		steps       = fs.Int("steps", 1000, "snapshots to record")
		seed        = fs.Uint64("seed", 1, "random seed")
		outPath     = fs.String("o", "", "output file (required)")
		text        = fs.Bool("text", false, "write the text format instead of binary")
		vmin        = fs.Float64("vmin", 0.1, "waypoint/direction/rpgm: min speed")
		vmax        = fs.Float64("vmax", -1, "waypoint/direction/rpgm: max speed (default 0.01*l)")
		tpause      = fs.Int("tpause", 2000, "waypoint/direction/rpgm: pause steps")
		pstationary = fs.Float64("pstationary", 0, "waypoint/drunkard/direction/gaussmarkov: fraction of permanently stationary nodes")
		ppause      = fs.Float64("ppause", 0.3, "drunkard: per-step pause probability")
		m           = fs.Float64("m", -1, "drunkard: step radius (default 0.01*l)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outPath == "" {
		return fmt.Errorf("flag -o is required")
	}
	reg, err := geom.NewRegion(*l, *dim)
	if err != nil {
		return err
	}
	explicit := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	mob, err := registry.ModelFromFlags(reg, *model, scenario.ModelFlags{
		VMin: *vmin, VMax: *vmax, Pause: *tpause,
		PStationary: *pstationary, PPause: *ppause, M: *m,
		Set: explicit,
	})
	if err != nil {
		return err
	}
	var place mobility.Placement
	if *placement != "uniform" {
		if place, err = registry.BuildPlacement(reg, scenario.Part(*placement)); err != nil {
			return err
		}
	}
	tr, err := trace.Record(mob, reg, *n, *steps, xrand.New(*seed), place)
	if err != nil {
		return err
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if *text {
		err = tr.WriteText(f)
	} else {
		err = tr.WriteBinary(f)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d nodes x %d snapshots (%s, dim %d) to %s\n",
		tr.Nodes(), tr.Steps(), mob.Name(), *dim, *outPath)
	return nil
}

// readTrace loads a trace in either format (binary first, then text).
func readTrace(path string) (*trace.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if tr, err := trace.ReadBinary(bytes.NewReader(data)); err == nil {
		return tr, nil
	}
	return trace.ReadText(bytes.NewReader(data))
}

func infoCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mobgen info", flag.ContinueOnError)
	radius := fs.Float64("r", 0, "also report connectivity at this transmitting range")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mobgen info [-r range] <trace-file>")
	}
	tr, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace: %d nodes, %d snapshots, region [0,%g]^%d\n",
		tr.Nodes(), tr.Steps(), tr.Region.L, tr.Region.Dim)

	var crit stats.Accumulator
	connected := 0
	for _, pts := range tr.Positions {
		p := graph.NewProfile(pts)
		crit.Add(p.Critical())
		if *radius > 0 && p.ConnectedAt(*radius) {
			connected++
		}
	}
	fmt.Fprintf(out, "critical radius: mean %.4g, min %.4g, max %.4g\n",
		crit.Mean(), crit.Min(), crit.Max())
	if *radius > 0 {
		fmt.Fprintf(out, "connected at r=%g: %.2f%% of snapshots\n",
			*radius, 100*float64(connected)/float64(tr.Steps()))
	}
	return nil
}

func convertCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mobgen convert", flag.ContinueOnError)
	to := fs.String("to", "text", "target format: text or binary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: mobgen convert -to <text|binary> <in> <out>")
	}
	tr, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	f, err := os.Create(fs.Arg(1))
	if err != nil {
		return err
	}
	defer f.Close()
	switch *to {
	case "text":
		err = tr.WriteText(f)
	case "binary":
		err = tr.WriteBinary(f)
	default:
		return fmt.Errorf("unknown format %q", *to)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "converted %s -> %s (%s)\n", fs.Arg(0), fs.Arg(1), *to)
	return nil
}

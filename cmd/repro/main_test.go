package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adhocnet/internal/obs"
)

func TestListExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig2", "fig9", "t1", "t3", "ext-energy"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("listing missing %q:\n%s", id, out.String())
		}
	}
}

func TestRunSingleExperimentWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	// t1 is the cheapest experiment (no mobile simulation).
	if err := run([]string{"-experiment", "t1", "-preset", "quick", "-out", dir}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "T1") {
		t.Errorf("output missing experiment title:\n%s", out.String())
	}
	files, err := filepath.Glob(filepath.Join(dir, "t1_*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("expected 2 CSV files, found %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "domain") {
		t.Errorf("CSV missing header: %s", data)
	}
}

func TestRunCommaSeparatedIDs(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-experiment", "t1,t3", "-preset", "quick"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "T1") || !strings.Contains(out.String(), "gap-pattern") {
		t.Errorf("multi-experiment output incomplete:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][]string{
		"unknown experiment": {"-experiment", "fig99"},
		"unknown preset":     {"-experiment", "t1", "-preset", "huge"},
	}
	for name, args := range cases {
		var out strings.Builder
		if err := run(args, &out, io.Discard); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestSeedOverrideChangesResults(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-experiment", "t3", "-preset", "quick", "-seed", "5"}, &a, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-experiment", "t3", "-preset", "quick", "-seed", "6"}, &b, io.Discard); err != nil {
		t.Fatal(err)
	}
	stripA := stripTimings(a.String())
	stripB := stripTimings(b.String())
	if stripA == stripB {
		t.Error("different seeds produced identical simulated output")
	}
}

func stripTimings(s string) string {
	lines := strings.Split(s, "\n")
	kept := lines[:0]
	for _, line := range lines {
		if strings.HasPrefix(line, "==") {
			continue // header contains the elapsed time
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestRunReportFlag pins repro's telemetry summary: the report decodes
// strictly, names the invocation, and carries the iteration counters the
// experiment's simulations accumulated.
func TestRunReportFlag(t *testing.T) {
	report := filepath.Join(t.TempDir(), "report.json")
	var out strings.Builder
	// fig2 runs real mobile simulations, so the scheduler counters move.
	if err := run([]string{"-experiment", "fig2", "-preset", "quick", "-run-report", report}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.DecodeRunReport(data)
	if err != nil {
		t.Fatalf("report does not round-trip strictly: %v\n%s", err, data)
	}
	if rep.Workload != "repro|preset=quick|experiment=fig2|seed=1" {
		t.Errorf("report workload = %q", rep.Workload)
	}
	if rep.Counters[obs.MetricIterationsTotal] == 0 {
		t.Error("report counts no iterations for a simulating experiment")
	}
	if rep.WallSeconds <= 0 {
		t.Errorf("report wall_seconds = %v, want > 0", rep.WallSeconds)
	}
}

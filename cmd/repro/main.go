// Command repro regenerates the paper's figures and the theory-validation
// experiments. Results are printed as markdown tables and ASCII charts, and
// optionally written as CSV files to an output directory.
//
//	repro -list
//	repro -experiment fig2 -preset quick
//	repro -experiment all -preset paper -out results/
//
// -obs <addr> serves live telemetry (/metrics, /vars, /debug/pprof/) while
// the experiments run, and -run-report <file> writes an end-of-run JSON
// summary of every counter the simulations accumulated — the same surface
// as adhocsim's; see DESIGN.md "Observability". Both are pure observers:
// experiment output is bit-identical with and without them.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"adhocnet/internal/core"
	"adhocnet/internal/experiments"
	"adhocnet/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) (err error) {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	var (
		expID      = fs.String("experiment", "all", "experiment id or 'all' (see -list)")
		preset     = fs.String("preset", "quick", "effort preset: quick, paper, scale or sweep")
		outDir     = fs.String("out", "", "directory for CSV output (optional)")
		list       = fs.Bool("list", false, "list experiments and exit")
		seed       = fs.Uint64("seed", 0, "override preset seed (0 = keep preset default)")
		workers    = fs.Int("workers", 0, "parallel workers (0 = all CPUs)")
		kinetic    = fs.String("kinetic", "auto", "trajectory evaluation: auto, on, off — performance only, results are identical")
		obsAddr    = fs.String("obs", "", "serve live telemetry on this address (/metrics, /vars, /debug/pprof/) while experiments run")
		reportPath = fs.String("run-report", "", "write an end-of-run telemetry summary (JSON, schema "+obs.RunReportSchema+") to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-14s %s\n", e.ID, e.Title)
		}
		return nil
	}
	p, err := experiments.PresetByName(*preset)
	if err != nil {
		return err
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	p.Workers = *workers
	if p.Kinetic, err = core.ParseKineticMode(*kinetic); err != nil {
		return err
	}

	// One registry spans every selected experiment, so the report aggregates
	// the whole invocation. Everything below observes; p.Obs == nil when no
	// observability flag is set, the absent fast path.
	var start time.Time
	if *obsAddr != "" || *reportPath != "" {
		p.Obs = obs.NewRegistry()
		start = obs.Clock.Now()
	}
	if *obsAddr != "" {
		srv, err := obs.StartServer(*obsAddr, p.Obs)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(errOut, "repro: serving telemetry on http://%s (/metrics, /vars, /debug/pprof/)\n", srv.Addr())
	}
	if *reportPath != "" {
		// Written on every exit path (the named return carries the run's
		// error past this defer), so an interrupted sweep still leaves its
		// telemetry behind.
		defer func() {
			rep := obs.NewRunReport(p.Obs)
			rep.Workload = fmt.Sprintf("repro|preset=%s|experiment=%s|seed=%d", p.Name, *expID, p.Seed)
			rep.Iterations = p.Iterations
			rep.Steps = p.Steps
			rep.WallSeconds = obs.Clock.Since(start).Seconds()
			if werr := rep.WriteFile(*reportPath); werr != nil {
				if err == nil {
					err = werr
				}
				return
			}
			fmt.Fprintf(errOut, "repro: run report written to %s\n", *reportPath)
		}()
	}

	var selected []experiments.Experiment
	if *expID == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("creating output directory: %w", err)
		}
	}
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(p)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		fmt.Fprintf(out, "== %s (%s preset, %s) ==\n\n", res.Title, p.Name, time.Since(start).Round(time.Millisecond))
		for _, tb := range res.Tables {
			fmt.Fprintln(out, tb.Markdown())
		}
		for _, ch := range res.Charts {
			fmt.Fprintln(out, ch.ASCII(72, 16))
		}
		for _, note := range res.Notes {
			fmt.Fprintf(out, "note: %s\n", note)
		}
		fmt.Fprintln(out)
		if *outDir != "" {
			for i, tb := range res.Tables {
				name := fmt.Sprintf("%s_%d.csv", res.ID, i)
				if err := os.WriteFile(filepath.Join(*outDir, name), []byte(tb.CSV()), 0o644); err != nil {
					return fmt.Errorf("writing %s: %w", name, err)
				}
			}
		}
	}
	return nil
}

// Command adhoclint runs the project's static-analysis suite (see
// internal/analysis) over the given package patterns and exits non-zero on
// any diagnostic. CI runs `go run ./cmd/adhoclint ./...` as a merge gate;
// the analysis package's self-test keeps `go test` equivalent.
//
// Usage:
//
//	adhoclint [-list] [-v] [packages]
//
// Patterns are go-tool style ("./...", "./internal/core"); the default is
// "./...". Intentional findings are suppressed in place with
// //adhoclint:allow <analyzer> <reason> on the offending line or the line
// above it.
package main

import (
	"flag"
	"fmt"
	"os"

	"adhocnet/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	verbose := flag.Bool("v", false, "report package and analyzer counts on success")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: adhoclint [-list] [-v] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(patterns, cwd)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}
	diags, err := analysis.Run(loader, pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	if *verbose {
		fmt.Printf("adhoclint: %d packages clean under %d analyzers\n", len(pkgs), len(analyzers))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adhoclint:", err)
	os.Exit(2)
}

package adhocnet

import "embed"

// Scenarios embeds the checked-in scenario library so the scenario-sweep
// experiment and the tests can enumerate every workload without depending
// on the working directory. The files are also plain JSON on disk for
// adhocsim -scenario; scenarios/README.md documents the schema.
//
//go:embed scenarios/*.json
var Scenarios embed.FS
